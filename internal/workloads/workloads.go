// Package workloads generates the paper's ten evaluation applications
// (Table 2) as synthetic kernel sequences for the gpu timing model.
//
// The real benchmarks are OpenCL/HC binaries; what the paper's
// experiments actually exercise is each application's *page-level
// behaviour*: how many kernels it launches (and whether the same kernel
// repeats back-to-back), how much LDS its work-groups reserve, how big
// its instruction footprint is, and — above all — the pattern and reach
// of its memory accesses. Each generator here reproduces those
// characteristics:
//
//	App    Kernels  B2B  LDS    Pattern                      Category
//	ATAX   2        no   none   row-strided then column walk  High
//	GEV    1        n/a  none   two-matrix row stride         High
//	MVT    2        no   none   row-strided then column walk  High
//	BICG   2        no   none   column walk then row stride   High
//	NW     many     yes  2.25KB anti-diagonal tiles           Medium
//	SRAD   1        n/a  4KB    coalesced streaming           Low
//	BFS    24       no   1KB    frontier-windowed random      Medium
//	SSSP   many     no   none   small-footprint frontier      Low
//	PRK    41       no   none   coalesced rank streaming      Low
//	GUPS   3        no   none   uniform random updates        High
//
// Generators are pure functions of (work-group, wave, instruction
// index), so a given seed reproduces the exact same trace on every run.
package workloads

import (
	"fmt"

	"gpureach/internal/gpu"
	"gpureach/internal/vm"
)

// Category is the paper's PTW-PKI classification (Table 2).
type Category string

// Categories from Table 2: High ≥ 20 PTW-PKI, Medium in (1, 20), Low ≤ 1.
const (
	High   Category = "H"
	Medium Category = "M"
	Low    Category = "L"
)

// Workload describes one benchmark application.
type Workload struct {
	Name     string
	Suite    string
	Category Category
	// UsesLDS marks applications whose work-groups reserve scratchpad
	// (Figure 4a: ~70% of applications do not).
	UsesLDS bool
	// B2B marks applications that launch the same kernel back-to-back
	// (Table 2: only NW), which disables the §4.3.3 flush benefit.
	B2B bool
	// Build allocates the application's buffers in space and returns its
	// kernel launch sequence. scale (≤ 1 shrinks) multiplies footprints
	// and dynamic instruction counts for fast runs.
	Build func(space *vm.AddrSpace, scale float64) []*gpu.Kernel
}

// All returns the ten applications in Table 2 order.
func All() []Workload {
	return []Workload{
		atax(), gev(), mvt(), bicg(),
		nw(), srad(),
		bfs(), sssp(), prk(),
		gups(),
	}
}

// ByName returns the named workload.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// Names returns all workload names in Table 2 order.
func Names() []string {
	var out []string
	for _, w := range All() {
		out = append(out, w.Name)
	}
	return out
}

// --- shared helpers -----------------------------------------------------

// threadsPerWG with the Table 1 shape (4 waves × 64 lanes).
const (
	lanes      = 64
	wavesPerWG = 4
	tpWG       = lanes * wavesPerWG
)

// scaleDim scales a dimension and rounds it up to a multiple of `align`
// (at least one multiple).
func scaleDim(base int, scale float64, align int) int {
	d := int(float64(base) * scale)
	if d < align {
		d = align
	}
	return (d + align - 1) / align * align
}

// scaleCount scales an integer count with a floor of 1.
func scaleCount(base int, scale float64) int {
	c := int(float64(base) * scale)
	if c < 1 {
		c = 1
	}
	return c
}

// mix64 is a SplitMix64 finalizer: a stateless hash giving each (wg,
// wave, k, lane) tuple an independent pseudo-random value, so random
// patterns need no mutable state.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// threadID returns the flat thread index of (wg, wave, lane).
func threadID(wg, wave, lane int) int {
	return wg*tpWG + wave*lanes + lane
}

// rowStrideKernel builds the Polybench "thread per row" matrix kernel:
// thread t sweeps row t of an rows×cols 8-byte-element matrix, so the
// 64 lanes of a wave touch 64 rows — cols×8 bytes apart — every memory
// instruction. For any matrix wider than half a page this puts tens of
// distinct pages in flight per wave instruction, the access shape that
// makes Polybench kernels TLB-bound (§3.1).
//
// memCols bounds the number of columns actually swept (the dynamic
// instruction budget); geometry (paging behaviour) is set by cols.
func rowStrideKernel(name string, m vm.Buffer, rows, cols, memCols int) *gpu.Kernel {
	if rows%tpWG != 0 {
		//gpureach:allow simerr -- workload-definition shape check at build time; no engine exists yet
		panic(fmt.Sprintf("workloads: %s rows %d not a multiple of %d", name, rows, tpWG))
	}
	return &gpu.Kernel{
		Name:          name,
		NumWorkgroups: rows / tpWG,
		WavesPerWG:    wavesPerWG,
		CodeBytes:     1536,
		InstrPerWave:  2 * memCols,
		MemEvery:      2,
		Mem: func(wg, wave, k int, out []vm.VA) []vm.VA {
			col := k % memCols
			for lane := 0; lane < lanes; lane++ {
				row := threadID(wg, wave, lane)
				out = append(out, m.At(uint64(row*cols+col)*8))
			}
			return out
		},
	}
}

// colStrideKernel builds the transposed Polybench kernel: thread t
// sweeps *column* t, so a wave's lanes coalesce into one or two pages
// per instruction but every instruction advances a full row — the wave
// streams through the entire matrix, cycling far more pages than any
// TLB holds.
func colStrideKernel(name string, m vm.Buffer, rows, cols, memRows int) *gpu.Kernel {
	if cols%tpWG != 0 {
		//gpureach:allow simerr -- workload-definition shape check at build time; no engine exists yet
		panic(fmt.Sprintf("workloads: %s cols %d not a multiple of %d", name, cols, tpWG))
	}
	return &gpu.Kernel{
		Name:          name,
		NumWorkgroups: cols / tpWG,
		WavesPerWG:    wavesPerWG,
		CodeBytes:     1536,
		InstrPerWave:  2 * memRows,
		MemEvery:      2,
		Mem: func(wg, wave, k int, out []vm.VA) []vm.VA {
			row := k % memRows
			for lane := 0; lane < lanes; lane++ {
				col := threadID(wg, wave, lane)
				out = append(out, m.At(uint64(row*cols+col)*8))
			}
			return out
		},
	}
}
