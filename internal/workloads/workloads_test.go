package workloads

import (
	"testing"

	"gpureach/internal/vm"
)

func buildAll(t *testing.T, scale float64) map[string][]kernelInfo {
	t.Helper()
	out := make(map[string][]kernelInfo)
	for _, w := range All() {
		frames := vm.NewFrameAllocator(16 << 30)
		space := vm.NewAddrSpace(vm.SpaceID{}, frames, vm.Page4K)
		kernels := w.Build(space, scale)
		var infos []kernelInfo
		for _, k := range kernels {
			k.Validate()
			infos = append(infos, kernelInfo{
				name: k.Name, wgs: k.NumWorkgroups, waves: k.WavesPerWG,
				lds: k.LDSBytesPerWG, instr: k.InstrPerWave,
				memEvery: k.MemEvery,
			})
		}
		out[w.Name] = infos
	}
	return out
}

type kernelInfo struct {
	name            string
	wgs, waves, lds int
	instr, memEvery int
}

func TestAllReturnsTableTwoApps(t *testing.T) {
	names := Names()
	want := []string{"ATAX", "GEV", "MVT", "BICG", "NW", "SRAD", "BFS", "SSSP", "PRK", "GUPS"}
	if len(names) != len(want) {
		t.Fatalf("got %d apps, want %d", len(names), len(want))
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("app[%d] = %s, want %s", i, names[i], n)
		}
	}
}

func TestByName(t *testing.T) {
	if w, ok := ByName("GUPS"); !ok || w.Suite != "µ-bm" {
		t.Errorf("ByName(GUPS) = %+v, %v", w, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Error("bogus name resolved")
	}
}

func TestAllKernelsValidate(t *testing.T) {
	buildAll(t, 1.0)
	buildAll(t, 0.1)
}

func TestKernelCountsMatchTable2Structure(t *testing.T) {
	infos := buildAll(t, 1.0)
	twoKernel := []string{"ATAX", "MVT", "BICG"}
	for _, app := range twoKernel {
		if len(infos[app]) != 2 {
			t.Errorf("%s has %d kernels, want 2 (Table 2)", app, len(infos[app]))
		}
	}
	for _, app := range []string{"GEV", "SRAD"} {
		if len(infos[app]) != 1 {
			t.Errorf("%s has %d kernels, want 1 (Table 2)", app, len(infos[app]))
		}
	}
	if len(infos["GUPS"]) != 3 {
		t.Errorf("GUPS has %d kernels, want 3 (Table 2)", len(infos["GUPS"]))
	}
	if len(infos["BFS"]) != 24 {
		t.Errorf("BFS has %d kernels, want 24 (Table 2)", len(infos["BFS"]))
	}
	if len(infos["PRK"]) != 41 {
		t.Errorf("PRK has %d kernels, want 41 (Table 2)", len(infos["PRK"]))
	}
	// NW and SSSP launch counts are scaled down; must still be "many".
	if len(infos["NW"]) < 16 {
		t.Errorf("NW has %d kernels, want many", len(infos["NW"]))
	}
	if len(infos["SSSP"]) < 100 {
		t.Errorf("SSSP has %d kernels, want many", len(infos["SSSP"]))
	}
}

func TestB2BStructure(t *testing.T) {
	infos := buildAll(t, 1.0)
	// NW: every launch is the same kernel name (Table 2 B-2-B = Yes).
	for _, k := range infos["NW"] {
		if k.name != "nw_kernel1" {
			t.Fatalf("NW kernel named %q", k.name)
		}
	}
	// Everything else: no two consecutive launches share a name.
	for app, ks := range infos {
		if app == "NW" {
			continue
		}
		for i := 1; i < len(ks); i++ {
			if ks[i].name == ks[i-1].name {
				t.Errorf("%s launches %q back-to-back (Table 2 says No)", app, ks[i].name)
			}
		}
	}
}

func TestLDSUsageMatchesFlag(t *testing.T) {
	infos := buildAll(t, 1.0)
	for _, w := range All() {
		usesLDS := false
		for _, k := range infos[w.Name] {
			if k.lds > 0 {
				usesLDS = true
			}
		}
		if usesLDS != w.UsesLDS {
			t.Errorf("%s: UsesLDS=%v but kernels say %v", w.Name, w.UsesLDS, usesLDS)
		}
	}
}

func TestCategoriesDeclared(t *testing.T) {
	want := map[string]Category{
		"ATAX": High, "GEV": High, "MVT": High, "BICG": High, "GUPS": High,
		"NW": Medium, "BFS": Medium,
		"SRAD": Low, "SSSP": Low, "PRK": Low,
	}
	for _, w := range All() {
		if w.Category != want[w.Name] {
			t.Errorf("%s category = %s, want %s", w.Name, w.Category, want[w.Name])
		}
	}
}

// TestPatternsStayInBounds drives every kernel's Mem pattern across its
// full index space and lets Buffer.At panic on any out-of-range address.
func TestPatternsStayInBounds(t *testing.T) {
	for _, w := range All() {
		frames := vm.NewFrameAllocator(16 << 30)
		space := vm.NewAddrSpace(vm.SpaceID{}, frames, vm.Page4K)
		kernels := w.Build(space, 0.25)
		lanesBuf := make([]vm.VA, 0, 64)
		for _, k := range kernels {
			if k.Mem == nil {
				continue
			}
			memInstrs := k.InstrPerWave / k.MemEvery
			for wg := 0; wg < k.NumWorkgroups; wg += 1 + k.NumWorkgroups/4 {
				for wave := 0; wave < k.WavesPerWG; wave++ {
					for m := 0; m < memInstrs; m += 1 + memInstrs/16 {
						lanesBuf = k.Mem(wg, wave, m, lanesBuf[:0])
						if len(lanesBuf) == 0 {
							t.Fatalf("%s/%s produced no addresses", w.Name, k.Name)
						}
					}
				}
			}
		}
	}
}

// TestPatternsDeterministic verifies Mem is a pure function.
func TestPatternsDeterministic(t *testing.T) {
	for _, name := range []string{"GUPS", "BFS", "ATAX"} {
		w, _ := ByName(name)
		frames := vm.NewFrameAllocator(16 << 30)
		space := vm.NewAddrSpace(vm.SpaceID{}, frames, vm.Page4K)
		kernels := w.Build(space, 0.25)
		k := kernels[len(kernels)-1]
		a := k.Mem(0, 1, 7, nil)
		b := k.Mem(0, 1, 7, nil)
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic lane count", name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: lane %d differs across calls", name, i)
			}
		}
	}
}

// TestRowStridePageSpread checks the defining property of the High
// Polybench kernels: a wave instruction touches many distinct pages.
func TestRowStridePageSpread(t *testing.T) {
	w, _ := ByName("ATAX")
	frames := vm.NewFrameAllocator(16 << 30)
	space := vm.NewAddrSpace(vm.SpaceID{}, frames, vm.Page4K)
	k1 := w.Build(space, 1.0)[0]
	addrs := k1.Mem(0, 0, 0, nil)
	pages := map[vm.VPN]bool{}
	for _, a := range addrs {
		pages[space.VPN(a)] = true
	}
	if len(pages) < 32 {
		t.Errorf("ATAX kernel1 touches %d pages per wave instruction, want many", len(pages))
	}
}

// TestStreamingCoalesces checks the defining property of the Low apps:
// a wave instruction coalesces into very few pages.
func TestStreamingCoalesces(t *testing.T) {
	for _, name := range []string{"SRAD", "PRK"} {
		w, _ := ByName(name)
		frames := vm.NewFrameAllocator(16 << 30)
		space := vm.NewAddrSpace(vm.SpaceID{}, frames, vm.Page4K)
		k := w.Build(space, 1.0)[0]
		addrs := k.Mem(0, 0, 0, nil)
		pages := map[vm.VPN]bool{}
		for _, a := range addrs {
			pages[space.VPN(a)] = true
		}
		if len(pages) > 2 {
			t.Errorf("%s touches %d pages per wave instruction, want ≤ 2 (coalesced)", name, len(pages))
		}
	}
}

// TestGUPSRandomSpread checks GUPS lanes target many distinct pages with
// no systematic aliasing between consecutive instructions.
func TestGUPSRandomSpread(t *testing.T) {
	w, _ := ByName("GUPS")
	frames := vm.NewFrameAllocator(16 << 30)
	space := vm.NewAddrSpace(vm.SpaceID{}, frames, vm.Page4K)
	update := w.Build(space, 1.0)[1]
	seen := map[vm.VA]int{}
	for k := 0; k < 16; k++ {
		for _, a := range update.Mem(0, 0, k, nil) {
			seen[a]++
		}
	}
	dup := 0
	for _, c := range seen {
		if c > 1 {
			dup += c - 1
		}
	}
	if dup > 8 {
		t.Errorf("GUPS random stream repeated %d addresses across 1024 draws", dup)
	}
}

func TestScaleHelpers(t *testing.T) {
	if d := scaleDim(1000, 0.5, 256); d != 512 {
		t.Errorf("scaleDim = %d, want 512", d)
	}
	if d := scaleDim(100, 0.001, 256); d != 256 {
		t.Errorf("scaleDim floor = %d, want 256", d)
	}
	if c := scaleCount(100, 0.25); c != 25 {
		t.Errorf("scaleCount = %d", c)
	}
	if c := scaleCount(3, 0.01); c != 1 {
		t.Errorf("scaleCount floor = %d", c)
	}
}
