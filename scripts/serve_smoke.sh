#!/bin/sh
# serve-smoke: end-to-end drive of `gpureach serve` at its HTTP surface.
#
# Starts the server on an ephemeral port, submits the same 2-app x
# 2-scheme campaign twice back to back (so the second submission lands
# while the shared cache — and possibly in-flight runs — can serve it),
# streams both event feeds to completion, and asserts:
#
#   1. the served aggregate is byte-identical to what the CLI sweep
#      writes for the same spec;
#   2. every cell of the duplicate campaign was coalesced or
#      cache-served (the simulator ran each distinct cell exactly once);
#   3. SIGTERM drains cleanly (exit 0, journals flushed).
#
# Needs curl; everything else is POSIX sh + the go toolchain.
set -eu

GO=${GO:-go}
WORK=.serve-smoke
SPEC='{"apps":["ATAX","GUPS"],"schemes":["ic+lds"],"scale":0.05}'
TOTAL=4 # 2 apps x {baseline, ic+lds}

rm -rf "$WORK"
mkdir -p "$WORK"

fail() { echo "serve-smoke: FAIL: $*" >&2; exit 1; }

# json_field <name> — pulls a top-level string/number field out of the
# single-line JSON the API writes, without requiring jq. Absent fields
# (e.g. a counter that never incremented) read as 0.
json_field() {
    v=$(sed -n 's/.*"'"$1"'":"\{0,1\}\([^",}]*\)"\{0,1\}[,}].*/\1/p' | head -1)
    echo "${v:-0}"
}

$GO build -o "$WORK/gpureach" ./cmd/gpureach

"$WORK/gpureach" serve -addr 127.0.0.1:0 -data "$WORK/data" -procs 2 \
    >"$WORK/serve.out" 2>"$WORK/serve.err" &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null || true' EXIT

# The listen line on stdout carries the picked port.
BASE=
for _ in $(seq 1 50); do
    BASE=$(sed -n 's/^serve: listening on \(http:\/\/[^ ]*\).*/\1/p' "$WORK/serve.out")
    [ -n "$BASE" ] && break
    kill -0 "$SERVER" 2>/dev/null || fail "server died at startup: $(cat "$WORK/serve.err")"
    sleep 0.2
done
[ -n "$BASE" ] || fail "server never printed its listen address"
echo "serve-smoke: server at $BASE"

curl -sf "$BASE/healthz" >/dev/null || fail "healthz unreachable"

# Submit the same spec twice, back to back — the duplicate must be
# admitted as its own campaign and served from shared results.
ID1=$(curl -sf -X POST -d "$SPEC" "$BASE/campaigns" | json_field id)
ID2=$(curl -sf -X POST -d "$SPEC" "$BASE/campaigns" | json_field id)
[ -n "$ID1" ] && [ -n "$ID2" ] || fail "submission did not return campaign IDs"
[ "$ID1" != "$ID2" ] || fail "duplicate submission reused campaign ID $ID1"
echo "serve-smoke: campaigns $ID1 and $ID2 submitted"

# Stream both event feeds; curl -N blocks until the server closes the
# stream at campaign completion, so this doubles as the wait.
curl -sfN "$BASE/campaigns/$ID1/events" >"$WORK/events1.ndjson"
curl -sfN "$BASE/campaigns/$ID2/events" >"$WORK/events2.ndjson"
for f in events1 events2; do
    n=$(wc -l <"$WORK/$f.ndjson")
    [ "$n" -eq "$TOTAL" ] || fail "$f streamed $n events, want $TOTAL"
done
echo "serve-smoke: both event streams delivered $TOTAL records"

for id in "$ID1" "$ID2"; do
    state=$(curl -sf "$BASE/campaigns/$id" | json_field state)
    [ "$state" = "done" ] || fail "campaign $id state = $state, want done"
done

# SLA check: the served aggregate is the CLI sweep's aggregate, byte
# for byte.
curl -sf "$BASE/campaigns/$ID1/aggregate" >"$WORK/served-aggregate.json"
"$WORK/gpureach" sweep -apps ATAX,GUPS -schemes ic+lds -scale 0.05 \
    -out "$WORK/cli" -bench '' -quiet -no-tables >/dev/null
cmp "$WORK/served-aggregate.json" "$WORK/cli/aggregate.json" \
    || fail "served aggregate differs from CLI sweep aggregate"
echo "serve-smoke: served aggregate byte-identical to CLI sweep"

# Dedup check: across both campaigns the engine executed each distinct
# cell exactly once — every overlapping cell was coalesced onto an
# in-flight execution or served from the shared cache. (Which campaign
# pays for a given cell depends on runner interleaving; the once-only
# total is the deterministic invariant.)
STATUS2=$(curl -sf "$BASE/campaigns/$ID2")
shared2=$(($(echo "$STATUS2" | json_field cache_hits) + $(echo "$STATUS2" | json_field coalesced)))
[ "$shared2" -gt 0 ] || fail "duplicate campaign shows no coalesced/cache-served cells (status: $STATUS2)"
METRICS=$(curl -sf "$BASE/metrics")
runs_executed=$(echo "$METRICS" | json_field runs_executed)
runs_completed=$(echo "$METRICS" | json_field runs_completed)
runs_shared=$(($(echo "$METRICS" | json_field runs_coalesced) + $(echo "$METRICS" | json_field runs_cache_hits)))
[ "$runs_executed" = "$TOTAL" ] || fail "engine executed $runs_executed runs, want $TOTAL (metrics: $METRICS)"
[ "$runs_completed" = "$((TOTAL * 2))" ] || fail "completions = $runs_completed, want $((TOTAL * 2))"
[ "$runs_shared" = "$TOTAL" ] || fail "coalesced+cache-served = $runs_shared, want $TOTAL (metrics: $METRICS)"
echo "serve-smoke: $TOTAL distinct cells executed once, $runs_shared duplicates coalesced/cache-served"

# Graceful drain: SIGTERM, clean exit.
kill -TERM "$SERVER"
rc=0
wait "$SERVER" || rc=$?
trap - EXIT
[ "$rc" -eq 0 ] || fail "server exited $rc on SIGTERM: $(cat "$WORK/serve.err")"
grep -q "drained" "$WORK/serve.err" || fail "server never reported draining"
for id in "$ID1" "$ID2"; do
    n=$(wc -l <"$WORK/data/campaigns/$id/journal.jsonl")
    [ "$n" -eq "$TOTAL" ] || fail "campaign $id journal has $n records after drain, want $TOTAL"
done
echo "serve-smoke: SIGTERM drained cleanly, journals intact"

rm -rf "$WORK"
echo "serve-smoke: PASS"
